// Command hilos-cluster evaluates trace-driven admission and cost-aware
// dispatch over a heterogeneous fleet of simulated inference systems: the
// production-deployment question the paper's offline-inference framing
// leads to — given mixed hardware tiers, which requests should run where?
//
// Usage:
//
//	hilos-cluster                                # default fleet, all policies
//	hilos-cluster -fleet hilos:2x16,flex-dram:1,instinfer:1x16
//	hilos-cluster -n 96 -rate 1.5 -seed 7        # Poisson arrivals
//	hilos-cluster -trace reqs.csv                # replay a recorded trace
//	hilos-cluster -policy cheapest-feasible      # one policy only
//	hilos-cluster -sweep 0.5,1,2,4               # arrival-rate sweep
//	hilos-cluster -list-systems
//
// Fleet syntax: comma-separated system[:count[xdevices]] terms — e.g.
// "hilos:2x16" is two HILOS pipelines with 16 SmartSSDs each, "flex-dram:1"
// one DRAM-baseline pipeline. Any registered engine system is accepted.
//
// Admission: -batch is the per-class target batch size; a partial batch is
// released once its oldest request has waited -wait seconds. -backlog caps
// admitted-but-unstarted requests (0 = unbounded); arrivals beyond the cap
// are rejected and reported.
//
// Dispatch policies (-policy, default "all"):
//
//	least-loaded       earliest-available pipeline (pure load balancing)
//	cheapest-feasible  lowest amortized $ for the batch among feasible
//	                   pipelines (§6.6 hardware pricing over 3 years)
//	fastest-eta        earliest completion, counting queueing
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hilos "repro"
)

func main() {
	modelName := flag.String("model", "OPT-30B", "Table 2 model name")
	fleetSpec := flag.String("fleet", "hilos:2x8,flex-dram:1", "fleet composition: system[:count[xdevices]],...")
	n := flag.Int("n", 64, "number of generated requests (ignored with -trace)")
	rate := flag.Float64("rate", 1.0, "Poisson arrival rate, requests/second (ignored with -trace)")
	seed := flag.Int64("seed", 7, "workload seed (ignored with -trace)")
	traceFile := flag.String("trace", "", "replay an arrival-trace CSV instead of generating one")
	batch := flag.Int("batch", 8, "admission: target batch size per class")
	wait := flag.Float64("wait", 30, "admission: max seconds the oldest queued request waits")
	backlog := flag.Int("backlog", 0, "admission: reject arrivals beyond this unstarted backlog (0 = unbounded)")
	policy := flag.String("policy", "all", "dispatch policy, or \"all\" to compare")
	sweep := flag.String("sweep", "", "comma-separated arrival rates to sweep (e.g. 0.5,1,2)")
	listSystems := flag.Bool("list-systems", false, "list registered engine systems and exit")
	flag.Parse()

	if *listSystems {
		for _, sys := range hilos.Systems() {
			fmt.Printf("%-12s %s\n", sys, hilos.DescribeSystem(sys))
		}
		return
	}

	m, err := hilos.ModelByName(*modelName)
	check(err)
	fleet, err := parseFleet(*fleetSpec)
	check(err)

	policies := hilos.DispatchPolicies()
	if *policy != "all" {
		policies = []hilos.DispatchPolicy{hilos.DispatchPolicy(*policy)}
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			check(err)
			rates = append(rates, r)
		}
		if *traceFile != "" {
			check(fmt.Errorf("-sweep and -trace are mutually exclusive"))
		}
	}

	for _, r := range rates {
		reqs, label, err := loadTrace(*traceFile, *seed, *n, r)
		check(err)
		fmt.Printf("== %s | model %s | fleet %s | batch %d wait %gs", label, m.Name, *fleetSpec, *batch, *wait)
		if *backlog > 0 {
			fmt.Printf(" backlog %d", *backlog)
		}
		fmt.Println(" ==")
		for _, p := range policies {
			opts := append(fleet,
				hilos.WithAdmission(*batch, *wait),
				hilos.WithMaxBacklog(*backlog),
				hilos.WithDispatchPolicy(p),
			)
			s, err := hilos.Cluster(m, reqs, opts...)
			check(err)
			printSummary(s)
		}
		fmt.Println()
	}
}

// parseFleet turns "hilos:2x16,flex-dram:1" into fleet options.
func parseFleet(spec string) ([]hilos.ClusterOption, error) {
	var opts []hilos.ClusterOption
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		sys, rest, _ := strings.Cut(term, ":")
		count, devices := 1, 0
		if rest != "" {
			c, d, hasDev := strings.Cut(rest, "x")
			var err error
			if count, err = strconv.Atoi(c); err != nil {
				return nil, fmt.Errorf("bad fleet term %q: count %q", term, c)
			}
			if hasDev {
				if devices, err = strconv.Atoi(d); err != nil {
					return nil, fmt.Errorf("bad fleet term %q: devices %q", term, d)
				}
			}
		}
		opts = append(opts, hilos.WithFleet(hilos.System(sys), count, devices))
	}
	if len(opts) == 0 {
		return nil, fmt.Errorf("empty fleet spec")
	}
	return opts, nil
}

func loadTrace(path string, seed int64, n int, rate float64) ([]hilos.TimedRequest, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		reqs, err := hilos.ReadArrivalTrace(f)
		return reqs, fmt.Sprintf("trace %s (%d requests)", path, len(reqs)), err
	}
	reqs, err := hilos.NewTimedWorkloadTrace(seed, n, rate)
	return reqs, fmt.Sprintf("%d requests, Poisson %g req/s, seed %d", n, rate, seed), err
}

func printSummary(s hilos.ClusterSummary) {
	fmt.Printf("%-18s makespan %9.1fs  tok/s %8.1f  delay p50/p95/p99 %6.1f/%6.1f/%6.1fs",
		s.Policy, s.MakespanSec, s.Throughput(), s.DelayP50Sec, s.DelayP95Sec, s.DelayP99Sec)
	fmt.Printf("  cost $%.4f  energy %.1fkJ", s.TotalCostUSD, s.TotalEnergyJ/1e3)
	if s.RejectedJobs > 0 || s.FailedJobs > 0 {
		fmt.Printf("  rejected %d failed %d", s.RejectedJobs, s.FailedJobs)
	}
	fmt.Println()
	for _, ps := range s.Pipelines {
		fmt.Printf("    %-16s %3d batches %4d jobs  busy %8.1fs  util %5.1f%%  $%.4f  %.1fkJ",
			ps.Name, ps.Batches, ps.Jobs, ps.BusySec, 100*ps.Utilization, ps.CostUSD, ps.EnergyJ/1e3)
		if ps.EnergyErr != "" {
			fmt.Printf("  (energy: %s)", ps.EnergyErr)
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilos-cluster:", err)
		os.Exit(1)
	}
}
