// Command hilos-verify is the functional verification tool of §5.1: it
// validates the accelerator's numerics against the exact reference before
// "committing to resource-intensive synthesis" — blocked attention vs
// FlashAttention-style reference, the two-pass softmax, the online
// transpose, GQA, the delayed-writeback merge, and end-task accuracy on the
// synthetic retrieval suite.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	hilos "repro"
	"repro/internal/accel"
	"repro/internal/attention"
	"repro/internal/longbench"
	"repro/internal/tensor"
)

func main() {
	seed := flag.Int64("seed", 1, "verification RNG seed")
	maxSeq := flag.Int("maxseq", 1024, "largest sequence length verified")
	tol := flag.Float64("tol", 3e-3, "max |accel − reference| tolerance (FP16 storage)")
	runTasks := flag.Bool("tasks", true, "also run the retrieval accuracy suite")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	check := func(name string, got, want tensor.Mat) {
		d := float64(tensor.MaxAbsDiff(got, want))
		status := "ok"
		if d > *tol {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %-44s max|Δ| = %.2e  %s\n", name, d, status)
	}

	fmt.Println("accelerator vs reference (FP16 storage, FP32 accumulate):")
	for _, s := range []int{1, 31, 128, 129, *maxSeq} {
		for _, dg := range []int{1, 4, 5} {
			a, err := accel.New(accel.Config{DGroup: dg, HeadDim: 128})
			if err != nil {
				fatal(err)
			}
			q := tensor.RandMat(rng, dg, 128, 1)
			k := tensor.RandMat(rng, s, 128, 1)
			v := tensor.RandMat(rng, s, 128, 1)
			got, err := a.Attention(q, k, v, nil, tensor.Mat{}, tensor.Mat{})
			if err != nil {
				fatal(err)
			}
			want := attention.Ref(q.Clone().RoundFP16(), k.Clone().RoundFP16(), v.Clone().RoundFP16(), nil)
			check(fmt.Sprintf("blocked attention s=%d d_group=%d", s, dg), got, want)
		}
	}

	fmt.Println("delayed-writeback merge (storage prefix + host partial):")
	{
		sOld, c := 512, 16
		a, _ := accel.New(accel.Config{DGroup: 1, HeadDim: 128})
		q := tensor.RandMat(rng, 1, 128, 1).RoundFP16()
		k := tensor.RandMat(rng, sOld+c, 128, 1).RoundFP16()
		v := tensor.RandMat(rng, sOld+c, 128, 1).RoundFP16()
		hostScores := attention.Scores(q, k.SliceRows(sOld, sOld+c))
		got, err := a.Attention(q, k.SliceRows(0, sOld), v.SliceRows(0, sOld), nil,
			hostScores, v.SliceRows(sOld, sOld+c))
		if err != nil {
			fatal(err)
		}
		want := attention.Ref(q, k, v, nil)
		check(fmt.Sprintf("writeback merge s=%d c=%d", sOld, c), got, want)
	}

	fmt.Println("two-pass softmax vs three-pass reference:")
	{
		x := make([]float32, 1000)
		for i := range x {
			x[i] = float32(rng.NormFloat64() * 5)
		}
		got := attention.SoftmaxTwoPass(x, nil, 128)
		want := attention.SoftmaxRef(x)
		gm := tensor.FromSlice(1, len(x), got)
		wm := tensor.FromSlice(1, len(x), want)
		check("two-pass softmax n=1000", gm, wm)
	}

	if *runTasks {
		fmt.Println("retrieval accuracy (accelerator must equal exact):")
		for _, task := range hilos.AccuracySuite() {
			exact, err := task.Score(*seed, longbench.Exact)
			if err != nil {
				fatal(err)
			}
			blocked, err := task.Score(*seed, longbench.Blocked)
			if err != nil {
				fatal(err)
			}
			status := "ok"
			if exact != blocked {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %-24s exact=%.1f accel=%.1f  %s\n", task.Name, exact, blocked, status)
		}
	}

	if failures > 0 {
		fmt.Printf("\n%d verification failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall verifications passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hilos-verify:", err)
	os.Exit(1)
}
