// Command hilos-lint runs the internal/lint analyzer suite over the
// repository and reports violations of the simulator's determinism, numeric
// and concurrency invariants.
//
// Usage:
//
//	hilos-lint [flags] [packages]
//
// Packages default to ./... and accept the usual go-list patterns. Flags:
//
//	-json         emit diagnostics as a JSON array instead of text
//	-rules a,b    run only the named analyzers (default: all)
//	-list         print the available analyzers and exit
//
// Exit status is 0 when no diagnostics survive suppression, 1 when
// diagnostics are reported, and 2 on a loading or internal error.
// Deliberate exceptions are suppressed in source with
// `//lint:allow <rule> <reason>` at line, declaration or package scope.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("hilos-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-16s %s\n", a.Name, doc)
		}
		return 0
	}
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a, ok := lint.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "hilos-lint: unknown rule %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hilos-lint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(res, analyzers, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hilos-lint: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			p := res.Fset.Position(d.Pos)
			out = append(out, jsonDiag{File: p.Filename, Line: p.Line, Column: p.Column, Rule: d.Rule, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hilos-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", res.Fset.Position(d.Pos), d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
