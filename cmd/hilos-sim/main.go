// Command hilos-sim simulates a single inference configuration and prints
// the full report: throughput, prefill, per-stage breakdown, utilizations,
// energy and write traffic.
//
// Usage:
//
//	hilos-sim -model OPT-66B -system hilos -devices 16 -batch 16 -ctx 65536
//	hilos-sim -model OPT-175B -system flex-ssd -ctx 131072
//	hilos-sim -systems            # list system identifiers
//	hilos-sim -describe           # list systems with descriptions
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	hilos "repro"
	"repro/internal/trace"
)

func main() {
	modelName := flag.String("model", "OPT-66B", "model from Table 2")
	system := flag.String("system", string(hilos.SystemHILOS), "system to simulate")
	devices := flag.Int("devices", 8, "SmartSSD count for HILOS variants")
	batch := flag.Int("batch", 16, "requested batch size")
	ctx := flag.Int("ctx", 32768, "context length (prompt tokens)")
	outLen := flag.Int("out", 64, "generated tokens")
	alpha := flag.Float64("alpha", -1, "X-cache ratio (-1 = auto, HILOS only)")
	spill := flag.Int("spill", 16, "writeback spill interval c (HILOS only)")
	traceOut := flag.String("trace", "", "write the decode step schedule as Chrome trace JSON to this file")
	listSystems := flag.Bool("systems", false, "list system identifiers and exit")
	describe := flag.Bool("describe", false, "list system identifiers with descriptions and exit")
	flag.Parse()

	if *listSystems {
		for _, s := range hilos.Systems() {
			fmt.Println(s)
		}
		return
	}
	if *describe {
		for _, s := range hilos.Systems() {
			fmt.Printf("%-12s %s\n", s, hilos.DescribeSystem(s))
		}
		return
	}

	sim, err := hilos.New(
		hilos.WithDevices(*devices),
		hilos.WithAlpha(*alpha),
		hilos.WithSpillInterval(*spill),
	)
	if err != nil {
		fatal(err)
	}
	m, err := hilos.ModelByName(*modelName)
	if err != nil {
		fatal(err)
	}
	req := hilos.Request{Model: m, Batch: *batch, Context: *ctx, OutputLen: *outLen}

	eng, err := sim.Engine(hilos.System(*system))
	if err != nil {
		fatal(err)
	}
	rep := eng.Run(req)

	fmt.Printf("system:   %s\n", rep.System)
	fmt.Printf("engine:   %s\n", eng.Describe())
	fmt.Printf("model:    %s   context: %d   requested batch: %d\n", rep.Model, rep.Context, *batch)
	if rep.OOM {
		fmt.Printf("result:   OOM (%s)\n", rep.Reason)
		return
	}
	fmt.Printf("batch:    %d (after capacity fitting)\n", rep.Batch)
	fmt.Printf("prefill:  %.2f s\n", rep.PrefillSec)
	fmt.Printf("decode:   %.3f s/step  →  %.4f tok/s\n", rep.StepSec, rep.DecodeTokPerSec())
	fmt.Printf("total for %d tokens: %.2f s\n", *outLen, rep.TotalSec(*outLen))

	fmt.Println("\nper-step stage busy time:")
	var labels []string
	for l := range rep.Breakdown {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Printf("  %-14s %8.3f s  (%.1f%% of stage time)\n", l, rep.Breakdown[l], 100*rep.BreakdownShare(l))
	}
	fmt.Printf("\nhost utilization: CPU %.1f%%  GPU %.1f%%  DRAM capacity %.1f%%\n",
		100*rep.HostUtilCPU, 100*rep.HostUtilGPU, 100*rep.HostUtilDRAMCap)
	fmt.Printf("storage writes:   %.1f MB/step decode, %.1f GB prefill\n",
		rep.DecodeWriteBytesPerStep/1e6, rep.PrefillWriteBytes/1e9)

	smart := 0
	if rep.Devices > 0 && rep.System != "FLEX(SSD)" && rep.System != "FLEX(DRAM)" {
		smart = rep.Devices
	}
	if b, err := sim.Energy(rep, smart); err == nil {
		fmt.Printf("energy/token:     CPU %.1f J  DRAM %.1f J  GPU %.1f J  SSD %.1f J  (total %.1f J)\n",
			b.CPU, b.DRAM, b.GPU, b.SSD, b.Total())
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		label := fmt.Sprintf("%s %s s=%d bs=%d", rep.System, rep.Model, rep.Context, rep.Batch)
		if err := trace.WriteChrome(f, rep.Trace, label); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d task records to %s (open in chrome://tracing)\n", len(rep.Trace), *traceOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hilos-sim:", err)
	os.Exit(1)
}
